// Command dknnd runs a deployed DKNN query server: a TCP daemon that
// moving objects and query clients (cmd/dknn-agent) connect to. It runs
// either standalone (the default) or as one node of a multi-process
// federation.
//
// Usage:
//
//	dknnd [-addr :7707] [-world 10000] [-grid 64] [-tick 1s]
//	      [-vobj 30] [-vqry 30] [-horizon 20] [-slack 10] [-theta 0]
//	      [-influence] [-shards 4] [-batched] [-http :8080] [-trace]
//
// Federation: start one dknnd per node, each with its node id, the full
// list of peer (inter-node) addresses, and the full list of client
// addresses — both indexed by node id and identical on every node. The
// world is split into len(peers) column strips; each node serves the
// clients inside its strip and relays boundary-spanning traffic to the
// owning peer over the link.
//
//	dknnd -node 0 -peers  127.0.0.1:7801,127.0.0.1:7802 \
//	              -client-addrs 127.0.0.1:7707,127.0.0.1:7708 \
//	              [-heartbeat 500ms] [-reap 0] [-balance] ...
//
// -balance enables adaptive partitioning: node 0 observes every node's
// load (busy time and population, reported over the link), and when the
// federation skews it moves one boundary grid column at a time between
// adjacent strips, migrating the affected monitors live. All nodes of a
// federation must agree on the -balance flags. The current partition map
// version and this node's owned-column count appear in /stats and under
// the "dknnd_partition" expvar key.
//
// The daemon prints its listen address and, once a second, a one-line
// status with connected clients and registered queries. Stop with
// SIGINT/SIGTERM.
//
// -trace arms an in-memory flight recorder on the protocol engine. With
// -http also set, the per-event-type census is exported through the
// standard expvar surface at /debug/vars (key "dknnd_trace", alongside
// "dknnd_stats"), so any expvar-speaking scraper can watch probe,
// install, answer, and resync rates live; the recorder's bounded tail of
// recent events stays available for post-mortems. In federation mode
// -http additionally serves /healthz: 200 once every peer link session
// is up, 503 while any is down.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dmknn"
	"dmknn/internal/obs"
)

// daemon is the common surface of the standalone and federation servers.
type daemon interface {
	Addr() string
	ClientCount() int
	QueryCount() int
	Close() error
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "listen address (standalone mode)")
	world := flag.Float64("world", 10000, "world side length in meters (square, origin at 0,0)")
	gridN := flag.Int("grid", 64, "broadcast grid cells per side")
	tick := flag.Duration("tick", time.Second, "evaluation interval")
	vobj := flag.Float64("vobj", 30, "max object speed, m/s")
	vqry := flag.Float64("vqry", 30, "max query speed, m/s")
	horizon := flag.Int("horizon", 20, "monitor refresh horizon, ticks")
	slack := flag.Int("slack", 10, "answer buffer size m")
	theta := flag.Float64("theta", 0, "in-boundary movement threshold, meters")
	influence := flag.Bool("influence", false, "influence-driven safe regions: advertise per-query frontier thresholds so objects suppress non-answer-changing reports")
	shards := flag.Int("shards", 1, "parallel query shards (>1 enables interior sharding; standalone mode)")
	batched := flag.Bool("batched", false, "batched ingest: queue uplinks per shard, drain at each tick (standalone mode)")
	quiet := flag.Bool("quiet", false, "suppress the periodic status line")
	httpAddr := flag.String("http", "", "serve operational stats as JSON on this address (e.g. :8080)")
	trace := flag.Bool("trace", false, "arm a protocol flight recorder (census at /debug/vars with -http)")
	node := flag.Int("node", -1, "federation: this process's node id")
	peers := flag.String("peers", "", "federation: comma-separated inter-node addresses of ALL nodes, indexed by node id")
	clientAddrs := flag.String("client-addrs", "", "federation: comma-separated client addresses of ALL nodes, indexed by node id")
	strips := flag.Int("strips", 0, "federation: expected cluster size (0 = derive from -peers; a mismatch is fatal)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "federation: peer keepalive cadence")
	reap := flag.Duration("reap", 0, "federation: evict clients silent for this long (0 = off)")
	balanceOn := flag.Bool("balance", false, "federation: enable adaptive partitioning (must match on all nodes)")
	balanceInterval := flag.Int("balance-interval", 16, "federation: ticks between balance decisions")
	balanceMinGain := flag.Float64("balance-min-gain", 0.05, "federation: minimum relative imbalance improvement to move a column")
	flag.Parse()

	proto := dmknn.Protocol{
		HorizonTicks: *horizon,
		AnswerSlack:  *slack,
		ThetaInside:  *theta,
		Influence:    *influence,
	}
	var rec *obs.Recorder
	var sink obs.Sink
	if *trace {
		rec = obs.NewRecorder(0)
		sink = rec
	}
	worldRect := dmknn.Rect{MinX: 0, MinY: 0, MaxX: *world, MaxY: *world}

	var (
		srv      daemon
		stats    func() any // JSON-ready operational snapshot
		healthy  func() bool
		fedLabel string
	)
	if *peers != "" {
		peerList := strings.Split(*peers, ",")
		clientList := strings.Split(*clientAddrs, ",")
		if *strips != 0 && *strips != len(peerList) {
			fmt.Fprintf(os.Stderr, "dknnd: -strips %d but %d peer addresses\n", *strips, len(peerList))
			os.Exit(1)
		}
		fopts := dmknn.FederationOptions{
			World:          worldRect,
			GridCols:       *gridN,
			GridRows:       *gridN,
			TickInterval:   *tick,
			MaxObjectSpeed: *vobj,
			MaxQuerySpeed:  *vqry,
			Protocol:       proto,
			Node:           *node,
			PeerAddrs:      peerList,
			ClientAddrs:    clientList,
			Heartbeat:      *heartbeat,
			IdleReap:       *reap,
			Trace:          sink,
		}
		if *balanceOn {
			fopts.BalanceInterval = *balanceInterval
			fopts.BalanceMinGain = *balanceMinGain
		}
		ns, err := dmknn.ListenAndServeNode(fopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknnd: %v\n", err)
			os.Exit(1)
		}
		srv = ns
		stats = func() any { return ns.Stats() }
		healthy = ns.Healthy
		fedLabel = fmt.Sprintf(" node %d/%d (link %s)", *node, len(peerList), ns.PeerAddr())
	} else {
		s, err := dmknn.ListenAndServe(*addr, dmknn.ServerOptions{
			World:          worldRect,
			GridCols:       *gridN,
			GridRows:       *gridN,
			TickInterval:   *tick,
			MaxObjectSpeed: *vobj,
			MaxQuerySpeed:  *vqry,
			Shards:         *shards,
			BatchedIngest:  *batched,
			Protocol:       proto,
			Trace:          sink,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknnd: %v\n", err)
			os.Exit(1)
		}
		srv = s
		stats = func() any { return s.Stats() }
	}
	fmt.Printf("dknnd: listening on %s%s (world %.0fm², tick %v)\n", srv.Addr(), fedLabel, *world, *tick)

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		if healthy != nil {
			mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
				if healthy() {
					fmt.Fprintln(w, "ok")
					return
				}
				http.Error(w, "peer link down", http.StatusServiceUnavailable)
			})
		}
		// The standard expvar surface: process-wide vars (memstats,
		// cmdline) plus the daemon's operational counters, and — with
		// -trace — the flight recorder's per-event-type census.
		expvar.Publish("dknnd_stats", expvar.Func(stats))
		if rec != nil {
			expvar.Publish("dknnd_trace", expvar.Func(func() any { return rec.Counts() }))
		}
		// Federation nodes also expose the live partition map state: the
		// version, this node's column ownership, and the balancer's
		// decision/move counters — the fast way to watch adaptive
		// partitioning converge across a cluster.
		if ns, ok := srv.(*dmknn.NodeServer); ok {
			expvar.Publish("dknnd_partition", expvar.Func(func() any {
				st := ns.Stats()
				return map[string]any{
					"version":           st.PartitionVersion,
					"owned_columns":     st.OwnedColumns,
					"column_moves":      st.ColumnMoves,
					"balance_decisions": st.BalanceDecisions,
					"balance_moves":     st.BalanceMoves,
					"balance_splits":    st.BalanceSplits,
					"balance_merges":    st.BalanceMerges,
				}
			}))
		}
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "dknnd: http: %v\n", err)
			}
		}()
		fmt.Printf("dknnd: stats at http://%s/stats, expvar at /debug/vars\n", *httpAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	status := time.NewTicker(time.Second)
	defer status.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\ndknnd: shutting down")
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dknnd: close: %v\n", err)
				os.Exit(1)
			}
			return
		case <-status.C:
			if !*quiet {
				if ns, ok := srv.(*dmknn.NodeServer); ok {
					fmt.Printf("dknnd: node=%d clients=%d queries=%d peers_up=%d\n",
						ns.Node(), ns.ClientCount(), ns.QueryCount(), ns.PeersUp())
				} else {
					fmt.Printf("dknnd: clients=%d queries=%d\n", srv.ClientCount(), srv.QueryCount())
				}
			}
		}
	}
}
