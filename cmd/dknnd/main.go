// Command dknnd runs a deployed DKNN query server: a TCP daemon that
// moving objects and query clients (cmd/dknn-agent) connect to.
//
// Usage:
//
//	dknnd [-addr :7App7] [-world 10000] [-grid 64] [-tick 1s]
//	      [-vobj 30] [-vqry 30] [-horizon 20] [-slack 10] [-theta 0]
//	      [-shards 4] [-batched] [-http :8080] [-trace]
//
// The daemon prints its listen address and, once a second, a one-line
// status with connected clients and registered queries. Stop with
// SIGINT/SIGTERM.
//
// -trace arms an in-memory flight recorder on the protocol engine. With
// -http also set, the per-event-type census is exported through the
// standard expvar surface at /debug/vars (key "dknnd_trace", alongside
// "dknnd_stats"), so any expvar-speaking scraper can watch probe,
// install, answer, and resync rates live; the recorder's bounded tail of
// recent events stays available for post-mortems.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmknn"
	"dmknn/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "listen address")
	world := flag.Float64("world", 10000, "world side length in meters (square, origin at 0,0)")
	gridN := flag.Int("grid", 64, "broadcast grid cells per side")
	tick := flag.Duration("tick", time.Second, "evaluation interval")
	vobj := flag.Float64("vobj", 30, "max object speed, m/s")
	vqry := flag.Float64("vqry", 30, "max query speed, m/s")
	horizon := flag.Int("horizon", 20, "monitor refresh horizon, ticks")
	slack := flag.Int("slack", 10, "answer buffer size m")
	theta := flag.Float64("theta", 0, "in-boundary movement threshold, meters")
	shards := flag.Int("shards", 1, "parallel query shards (>1 enables interior sharding)")
	batched := flag.Bool("batched", false, "batched ingest: queue uplinks per shard, drain at each tick")
	quiet := flag.Bool("quiet", false, "suppress the periodic status line")
	httpAddr := flag.String("http", "", "serve operational stats as JSON on this address (e.g. :8080)")
	trace := flag.Bool("trace", false, "arm a protocol flight recorder (census at /debug/vars with -http)")
	flag.Parse()

	opts := dmknn.ServerOptions{
		World:          dmknn.Rect{MinX: 0, MinY: 0, MaxX: *world, MaxY: *world},
		GridCols:       *gridN,
		GridRows:       *gridN,
		TickInterval:   *tick,
		MaxObjectSpeed: *vobj,
		MaxQuerySpeed:  *vqry,
		Shards:         *shards,
		BatchedIngest:  *batched,
		Protocol: dmknn.Protocol{
			HorizonTicks: *horizon,
			AnswerSlack:  *slack,
			ThetaInside:  *theta,
		},
	}
	var rec *obs.Recorder
	if *trace {
		rec = obs.NewRecorder(0)
		opts.Trace = rec
	}
	srv, err := dmknn.ListenAndServe(*addr, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dknnd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dknnd: listening on %s (world %.0fm², tick %v)\n", srv.Addr(), *world, *tick)

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(srv.Stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		// The standard expvar surface: process-wide vars (memstats,
		// cmdline) plus the daemon's operational counters, and — with
		// -trace — the flight recorder's per-event-type census.
		expvar.Publish("dknnd_stats", expvar.Func(func() any { return srv.Stats() }))
		if rec != nil {
			expvar.Publish("dknnd_trace", expvar.Func(func() any { return rec.Counts() }))
		}
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "dknnd: http: %v\n", err)
			}
		}()
		fmt.Printf("dknnd: stats at http://%s/stats, expvar at /debug/vars\n", *httpAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	status := time.NewTicker(time.Second)
	defer status.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\ndknnd: shutting down")
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dknnd: close: %v\n", err)
				os.Exit(1)
			}
			return
		case <-status.C:
			if !*quiet {
				fmt.Printf("dknnd: clients=%d queries=%d\n", srv.ClientCount(), srv.QueryCount())
			}
		}
	}
}
