// Command tracegen generates moving-object trajectory traces as CSV, for
// inspection and for use by external tooling. Each row is one object at
// one tick:
//
//	tick,id,x,y,vx,vy
//
// Usage:
//
//	tracegen [-model waypoint|direction|manhattan] [-n 1000] [-ticks 100]
//	         [-world 10000] [-vmin 5] [-vmax 20] [-seed 1] [-o trace.csv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dmknn/internal/geo"
	"dmknn/internal/workload"
)

func main() {
	modelName := flag.String("model", workload.ModelWaypoint, "mobility model: waypoint, direction, or manhattan")
	n := flag.Int("n", 1000, "number of objects")
	ticks := flag.Int("ticks", 100, "trace length in ticks")
	world := flag.Float64("world", 10000, "world side length in meters")
	vmin := flag.Float64("vmin", 5, "min speed, m/s")
	vmax := flag.Float64("vmax", 20, "max speed, m/s")
	dt := flag.Float64("dt", 1, "seconds per tick")
	seed := flag.Int64("seed", 1, "trajectory seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	rect := geo.NewRect(geo.Pt(0, 0), geo.Pt(*world, *world))
	factory, err := workload.ModelFactory(*modelName, rect, *vmin, *vmax)
	if err != nil {
		fatal(err)
	}
	model, err := factory(*seed)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	states := model.Init(*n)
	fmt.Fprintln(bw, "tick,id,x,y,vx,vy")
	for t := 0; t <= *ticks; t++ {
		for _, s := range states {
			fmt.Fprintf(bw, "%d,%d,%.3f,%.3f,%.3f,%.3f\n", t, s.ID, s.Pos.X, s.Pos.Y, s.Vel.X, s.Vel.Y)
		}
		model.Step(states, *dt)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
