// Command dknn-bench regenerates the paper's evaluation: it runs every
// experiment in the reconstructed grid (DESIGN.md §5) and prints the
// figure/table data that EXPERIMENTS.md records.
//
// Usage:
//
//	dknn-bench [-profile full|smoke] [-only fig5,table3] [-markdown]
//
// The full profile is paper-scale (tens of thousands of objects; expect
// minutes per experiment). The smoke profile runs the same grid at unit
// scale in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dmknn/internal/exp"
)

func main() {
	profileName := flag.String("profile", "smoke", "experiment scale: full or smoke")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	seeds := flag.Int("seeds", 1, "repetitions per cell with distinct workload seeds (mean reported)")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
			os.Exit(1)
		}
	}

	var profile exp.Profile
	switch *profileName {
	case "full":
		profile = exp.FullProfile()
	case "smoke":
		profile = exp.SmokeProfile()
	default:
		fmt.Fprintf(os.Stderr, "dknn-bench: unknown profile %q (want full or smoke)\n", *profileName)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Printf("# dknn-bench profile=%s\n\n", *profileName)
	for _, e := range exp.Suite(profile) {
		if !selected(e.ID) {
			continue
		}
		e.Seeds = *seeds
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.Render())
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if selected("table2") {
		out, err := profile.RunTable2()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: table2: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
