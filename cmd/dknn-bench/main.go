// Command dknn-bench regenerates the paper's evaluation: it runs every
// experiment in the reconstructed grid (DESIGN.md §5) and prints the
// figure/table data that EXPERIMENTS.md records.
//
// Usage:
//
//	dknn-bench [-profile full|smoke] [-only fig5,table3] [-markdown]
//	           [-workers N] [-json out.json] [-trace]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The full profile is paper-scale (tens of thousands of objects; expect
// minutes per experiment). The smoke profile runs the same grid at unit
// scale in seconds.
//
// -workers sets the experiment runner's worker-pool size (0 = one worker
// per core). Every (method × sweep-point × seed) cell is an independent
// seeded simulation, so the tables are byte-identical for every worker
// count; experiments that measure wall-clock quantities (fig10, fig13,
// fig14, fig15, fig16, fig19, fig20) are declared Serial and always run
// their cells one at a time so sibling runs cannot perturb their
// timings.
//
// -json additionally writes a machine-readable report — per-experiment
// wall-clock, the worker count used, and host parallelism — which is how
// the checked-in BENCH_PR1.json, BENCH_PR3.json, and BENCH_PR4.json
// baselines were produced.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiments (see README.md §Profiling), which is how hot-path
// regressions in the simulated medium and the server are diagnosed from
// a reproducible command line.
//
// -trace arms a shared flight recorder on every simulation of the
// selected experiments and prints a per-event-type census after each
// one — a quick structural sanity check (probes concluded, installs
// landed, resyncs fired) without touching the tables, which stay
// byte-identical with tracing on or off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/exp"
	"dmknn/internal/obs"
)

// expTiming is one experiment's entry in the -json report. Columns and
// Rows carry the rendered table itself, so a checked-in report is a
// complete record of the numbers, not just how long they took.
type expTiming struct {
	ID      string    `json:"id"`
	Serial  bool      `json:"serial"`
	Seconds float64   `json:"seconds"`
	Columns []string  `json:"columns,omitempty"`
	Rows    []jsonRow `json:"rows,omitempty"`
}

// jsonRow is one sweep point of an experiment table in the -json report.
type jsonRow struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// report is the -json output: enough to compare suite wall-clock across
// worker counts and machines, plus the hot-path allocation rate and the
// profile's shard grid so scaling artifacts are self-describing.
type report struct {
	Profile    string `json:"profile"`
	Workers    int    `json:"workers"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Seeds      int    `json:"seeds"`
	// Shards is the profile's shard-count grid (fig16/fig19 methods).
	Shards []int `json:"shards,omitempty"`
	// AllocsPerOp is the measured heap allocation rate of the server's
	// move-report hot path with tracing off; the pinned value is 0.
	AllocsPerOp     float64     `json:"allocs_per_op"`
	Experiments     []expTiming `json:"experiments"`
	ParallelSeconds float64     `json:"parallel_seconds"` // non-Serial experiments
	SerialSeconds   float64     `json:"serial_seconds"`   // Serial experiments
	TotalSeconds    float64     `json:"total_seconds"`
}

func main() {
	profileName := flag.String("profile", "smoke", "experiment scale: full or smoke")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	seeds := flag.Int("seeds", 1, "repetitions per cell with distinct workload seeds (mean reported)")
	workers := flag.Int("workers", 0, "worker pool size for experiment cells (0 = GOMAXPROCS; Serial experiments ignore it)")
	jsonPath := flag.String("json", "", "also write a machine-readable timing report to this file")
	trace := flag.Bool("trace", false, "arm a flight recorder on every simulation and print a per-event census after each experiment")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
			os.Exit(1)
		}
	}

	var profile exp.Profile
	switch *profileName {
	case "full":
		profile = exp.FullProfile()
	case "smoke":
		profile = exp.SmokeProfile()
	default:
		fmt.Fprintf(os.Stderr, "dknn-bench: unknown profile %q (want full or smoke)\n", *profileName)
		os.Exit(2)
	}
	profile.Workers = *workers

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	rep := report{
		Profile:    *profileName,
		Workers:    *workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seeds:      *seeds,
		Shards:     profile.Shards,
	}
	allocs, err := core.MoveReportAllocsPerOp(0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dknn-bench: alloc probe: %v\n", err)
		os.Exit(1)
	}
	rep.AllocsPerOp = allocs

	fmt.Printf("# dknn-bench profile=%s workers=%d\n\n", *profileName, *workers)
	for _, e := range exp.Suite(profile) {
		if !selected(e.ID) {
			continue
		}
		e.Seeds = *seeds
		var rec *obs.Recorder
		if *trace {
			// One shared recorder across the experiment's cells: the
			// census below is a structural summary, so lifetime counts
			// matter and the retained tail does not.
			rec = obs.NewRecorder(0)
			for i := range e.Points {
				e.Points[i].Config.Trace = rec
			}
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.Render())
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if rec != nil {
			counts := rec.Counts()
			keys := make([]string, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Printf("trace census: %d events across %d cells\n",
				rec.Total(), len(e.Points)*len(e.Methods))
			for _, k := range keys {
				fmt.Printf("  %-22s %d\n", k, counts[k])
			}
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		timing := expTiming{
			ID: e.ID, Serial: e.Serial, Seconds: elapsed.Seconds(),
			Columns: table.Columns,
		}
		for _, r := range table.Rows {
			timing.Rows = append(timing.Rows, jsonRow{Label: r.Label, Values: r.Values})
		}
		rep.Experiments = append(rep.Experiments, timing)
		if e.Serial {
			rep.SerialSeconds += elapsed.Seconds()
		} else {
			rep.ParallelSeconds += elapsed.Seconds()
		}
		rep.TotalSeconds += elapsed.Seconds()
	}
	if selected("table2") {
		start := time.Now()
		out, err := profile.RunTable2()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: table2: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
		elapsed := time.Since(start)
		rep.Experiments = append(rep.Experiments, expTiming{
			ID: "table2", Serial: true, Seconds: elapsed.Seconds(),
		})
		rep.SerialSeconds += elapsed.Seconds()
		rep.TotalSeconds += elapsed.Seconds()
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dknn-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
