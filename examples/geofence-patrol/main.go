// Geofence patrol: patrol cars driving a Manhattan road grid each track
// their k nearest field units continuously. The example demonstrates the
// road-network mobility model and the protocol's accuracy knob θ: with
// θ = 0 the answers are exact; loosening θ cuts the message rate at a
// bounded accuracy cost — pick the operating point your radio budget
// affords.
//
//	go run ./examples/geofence-patrol
package main

import (
	"fmt"
	"log"

	"dmknn"
)

func main() {
	base := dmknn.SimConfig{
		Method:         dmknn.MethodDKNN,
		World:          dmknn.Rect{MinX: 0, MinY: 0, MaxX: 5000, MaxY: 5000},
		GridCols:       32,
		GridRows:       32,
		NumObjects:     1500, // field units on the road grid
		NumQueries:     12,   // patrol cars
		K:              8,
		MaxObjectSpeed: 15,
		MaxQuerySpeed:  15,
		Mobility:       dmknn.MobilityManhattan,
		Ticks:          150,
		Warmup:         20,
		Seed:           23,
	}

	fmt.Println("θ (m)   uplink/s   exactness   mean recall")
	for _, theta := range []float64{0, 10, 25, 50, 100} {
		cfg := base
		cfg.Protocol = dmknn.Protocol{
			HorizonTicks:   10,
			MinProbeRadius: 200,
			ThetaInside:    theta,
		}
		rep, err := dmknn.Run(cfg)
		if err != nil {
			log.Fatalf("geofence-patrol: %v", err)
		}
		fmt.Printf("%5.0f %10.1f %11.3f %13.3f\n",
			theta, rep.UplinkPerTick, rep.Exactness, rep.MeanRecall)
	}
	fmt.Println("\nθ=0 is the provably exact mode; each step up trades a little")
	fmt.Println("rank accuracy near the answer boundary for fewer move reports.")
}
