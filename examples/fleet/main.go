// Fleet monitoring: a logistics operator keeps sixteen depot dashboards
// live, each showing the 5 trucks nearest to its (moving) regional
// coordinator, over a 40 000-truck fleet. The example contrasts what the
// wireless bill looks like under the naive stream-everything design and
// under the distributed protocol, and prints the full per-message-kind
// breakdown for the latter.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"dmknn"
)

func main() {
	base := dmknn.SimConfig{
		World:          dmknn.Rect{MinX: 0, MinY: 0, MaxX: 20000, MaxY: 20000},
		GridCols:       64,
		GridRows:       64,
		NumObjects:     40000,
		NumQueries:     16,
		K:              5,
		MaxObjectSpeed: 25, // highway trucks
		MaxQuerySpeed:  15,
		Mobility:       dmknn.MobilityWaypoint,
		Ticks:          100,
		Warmup:         20,
		Seed:           11,
		SkipAudit:      true, // pure traffic comparison; exactness shown in quickstart
	}

	cp := base
	cp.Method = dmknn.MethodCP
	cpRep, err := dmknn.Run(cp)
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}

	dk := base
	dk.Method = dmknn.MethodDKNN
	dkRep, err := dmknn.Run(dk)
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}

	fmt.Printf("fleet of %d trucks, %d dashboards, k=%d\n\n", base.NumObjects, base.NumQueries, base.K)
	fmt.Printf("stream-everything (CP): %9.0f uplink msgs/s   (%7.1f KB/s)\n",
		cpRep.UplinkPerTick, float64(cpRep.UplinkBytes)/float64(base.Ticks)/1024)
	fmt.Printf("distributed (DKNN):     %9.0f uplink msgs/s   (%7.1f KB/s)\n",
		dkRep.UplinkPerTick, float64(dkRep.UplinkBytes)/float64(base.Ticks)/1024)
	fmt.Printf("\nreduction: %.0fx fewer uplink messages\n\n",
		cpRep.UplinkPerTick/dkRep.UplinkPerTick)
	fmt.Println("DKNN message breakdown over the measured window:")
	fmt.Println(dkRep.MessageBreakdown)
}
