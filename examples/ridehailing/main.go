// Ride hailing over real TCP: a dispatch server tracks which drivers are
// closest to each rider, continuously, as everyone moves. This example
// runs the full deployment stack in one process — a dmknn server, one
// TCP connection per driver, and one per rider — exactly as separate
// machines would run it.
//
//	go run ./examples/ridehailing
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"dmknn"
)

const (
	city     = 3000.0 // meters per side
	drivers  = 60
	riders   = 3
	tick     = 50 * time.Millisecond // sped-up clock for the demo
	runFor   = 3 * time.Second
	kDrivers = 3
	driverV  = 12.0 // m/s
	laps     = 2 * math.Pi / 40
)

// mover is a toy kinematic: circle around a center, phase-shifted per id.
type mover struct {
	mu     sync.Mutex
	center dmknn.Point
	radius float64
	phase  float64
}

func (m *mover) step(dphi float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.phase += dphi
}

func (m *mover) pos() dmknn.Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	return dmknn.Point{
		X: m.center.X + m.radius*math.Cos(m.phase),
		Y: m.center.Y + m.radius*math.Sin(m.phase),
	}
}

func (m *mover) vel() dmknn.Vector {
	m.mu.Lock()
	defer m.mu.Unlock()
	speed := m.radius * laps / tick.Seconds()
	return dmknn.Vector{
		X: -speed * math.Sin(m.phase) * tick.Seconds(),
		Y: speed * math.Cos(m.phase) * tick.Seconds(),
	}
}

func main() {
	world := dmknn.Rect{MinX: 0, MinY: 0, MaxX: city, MaxY: city}
	proto := dmknn.Protocol{HorizonTicks: 10, MinProbeRadius: 200, AnswerSlack: 3}

	srv, err := dmknn.ListenAndServe("127.0.0.1:0", dmknn.ServerOptions{
		World:          world,
		GridCols:       16,
		GridRows:       16,
		TickInterval:   tick,
		MaxObjectSpeed: driverV * 4,
		MaxQuerySpeed:  driverV * 4,
		Protocol:       proto,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("dispatch server on %s\n", srv.Addr())

	copts := dmknn.ClientOptions{World: world, TickInterval: tick, Protocol: proto}

	// Drivers circle various blocks of the city.
	var movers []*mover
	for i := 0; i < drivers; i++ {
		m := &mover{
			center: dmknn.Point{
				X: 300 + float64(i%8)*330,
				Y: 300 + float64(i/8)*330,
			},
			radius: 120,
			phase:  float64(i),
		}
		movers = append(movers, m)
		oc, err := dmknn.DialObject(srv.Addr(), dmknn.ObjectID(i+1), m.pos, copts)
		if err != nil {
			log.Fatalf("driver %d: %v", i+1, err)
		}
		defer oc.Close()
	}

	// Riders walk smaller circles downtown and each continuously tracks
	// the 3 nearest drivers.
	for r := 0; r < riders; r++ {
		m := &mover{
			center: dmknn.Point{X: 1200 + 300*float64(r), Y: 1500},
			radius: 60,
			phase:  float64(r) * 2,
		}
		movers = append(movers, m)
		rid := r + 1
		qc, err := dmknn.DialQuery(srv.Addr(), dmknn.ObjectID(1000+r), dmknn.QueryID(rid),
			kDrivers, m.pos, m.vel,
			func(a dmknn.Answer) {
				fmt.Printf("rider %d: nearest drivers now %v\n", rid, a.Neighbors)
			},
			copts)
		if err != nil {
			log.Fatalf("rider %d: %v", rid, err)
		}
		defer qc.Close()
	}

	// Advance everyone's motion at the tick rate.
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				for _, m := range movers {
					m.step(laps)
				}
			}
		}
	}()

	time.Sleep(runFor)
	close(stop)
	fmt.Printf("done: %d clients stayed connected, %d queries live\n",
		srv.ClientCount(), srv.QueryCount())
}
