// Airspace watch: control towers continuously monitor every aircraft
// within a fixed radius of a moving patrol plane — the range-monitoring
// mode of the protocol, where membership *is* the answer and in-zone
// aircraft send no position refreshes at all. The example also runs the
// server sharded across CPU cores and compares the wireless bill against
// the stream-everything design.
//
//	go run ./examples/airspace
package main

import (
	"fmt"
	"log"

	"dmknn"
)

func main() {
	base := dmknn.SimConfig{
		World:          dmknn.Rect{MinX: 0, MinY: 0, MaxX: 50000, MaxY: 50000}, // 50 km sector
		GridCols:       64,
		GridRows:       64,
		NumObjects:     5000, // aircraft
		NumQueries:     24,   // patrol planes, each watching a 3 km bubble
		QueryRange:     3000,
		MaxObjectSpeed: 250, // m/s
		MaxQuerySpeed:  200,
		Ticks:          150,
		Warmup:         20,
		Seed:           31,
		Shards:         4,
		Protocol:       dmknn.Protocol{HorizonTicks: 10, MinProbeRadius: 3000},
	}

	dk := base
	dk.Method = dmknn.MethodDKNN
	dkRep, err := dmknn.Run(dk)
	if err != nil {
		log.Fatalf("airspace: %v", err)
	}
	cp := base
	cp.Method = dmknn.MethodCP
	cp.SkipAudit = true
	cpRep, err := dmknn.Run(cp)
	if err != nil {
		log.Fatalf("airspace: %v", err)
	}

	fmt.Printf("%d aircraft, %d moving 3km-radius watch zones\n\n", base.NumObjects, base.NumQueries)
	fmt.Printf("stream-everything (CP): %8.0f uplink msgs/s\n", cpRep.UplinkPerTick)
	fmt.Printf("distributed (DKNN):     %8.0f uplink msgs/s   exactness %.3f\n",
		dkRep.UplinkPerTick, dkRep.Exactness)
	fmt.Printf("\nreduction: %.0fx — and zone membership is maintained exactly;\n",
		cpRep.UplinkPerTick/dkRep.UplinkPerTick)
	fmt.Println("aircraft inside a zone transmit nothing until they cross a boundary.")
}
