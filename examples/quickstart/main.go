// Quickstart: run the distributed moving-kNN engine and the two
// centralized baselines on the same synthetic workload and compare the
// wireless traffic they need to maintain identical continuous queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmknn"
)

func main() {
	// A 2 km × 2 km city, 2 000 moving objects, 16 continuous queries,
	// each asking for its 10 nearest objects once per second.
	base := dmknn.SimConfig{
		World:          dmknn.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000},
		GridCols:       32,
		GridRows:       32,
		NumObjects:     2000,
		NumQueries:     16,
		K:              10,
		MaxObjectSpeed: 15,
		MaxQuerySpeed:  15,
		Ticks:          120,
		Warmup:         20,
		Seed:           7,
		Protocol:       dmknn.Protocol{HorizonTicks: 10, MinProbeRadius: 150},
	}

	fmt.Println("method  uplink/s  downlink+bcast/s  exactness  recall")
	for _, method := range []string{dmknn.MethodCP, dmknn.MethodCI, dmknn.MethodDKNN} {
		cfg := base
		cfg.Method = method
		cfg.CITau = 30
		rep, err := dmknn.Run(cfg)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		fmt.Printf("%-7s %9.1f %17.1f %10.3f %7.3f\n",
			rep.Method, rep.UplinkPerTick,
			rep.DownlinkPerTick+rep.BroadcastPerTick,
			rep.Exactness, rep.MeanRecall)
	}
	fmt.Println("\nThe distributed protocol (dknn) maintains exact answers with a")
	fmt.Println("fraction of the uplink messages the centralized designs need.")
}
