package dmknn_test

// End-to-end adaptive-partitioning test over real processes and real
// sockets: a four-node dknnd federation with the balancer on, a hotspot
// workload crammed into node 0's strip, and the chaos the balancer must
// survive — a kill of the column-receiving node immediately after the
// first migration, while monitors and objects are still in flight to it.
// The audit is the same brute-force exactness check as the static
// federation e2e: the answer must be recall 1.00 at every checkpoint.

import (
	"testing"
	"time"

	"dmknn"
)

// TestFederationBalanceChaos proves the migration-safety invariant over
// sockets. With 10 grid columns over 4 nodes the static strips split as
// 3/3/2/2 columns (boundaries at x=300, 600, 800); nine of twelve
// clients plus the query sit in node 0's strip, so the coordinator must
// shift boundary columns toward node 1. Checkpoints: exact before any
// move; node 1 killed right after the first PartitionUpdate commits and
// rejoined at version 0 (forcing the stale-peer map push); then an
// object teleports into the focal neighborhood and the answer must track
// it exactly across whatever map the cluster has converged on.
func TestFederationBalanceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	const nodes = 4
	peers := reserveLoopbackPorts(t, nodes)
	clients := reserveLoopbackPorts(t, nodes)

	// Balance decisions every 5 ticks (500ms): fast enough to observe,
	// slow enough that each move's migration settles between decisions.
	balEnv := fedBalanceEnv + "=5"
	procs := make([]*fedProc, nodes)
	for i := 0; i < nodes; i++ {
		procs[i] = spawnFedNode(t, i, peers, clients, balEnv)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p != nil {
				p.shutdown()
			}
		}
	})
	for _, p := range procs {
		p.expect(t, "READY", 20*time.Second)
	}
	for _, p := range procs {
		p.expect(t, "HEALTHY", 20*time.Second)
	}

	// Hotspot: objects 1-8 and 12 (and the focal query) live in node 0's
	// strip, with 3, 4, 7, 12 inside boundary column 2 (x in [200,300)) —
	// the column the first move hands to node 1. Objects 3 and 12 are in
	// the k=5 answer, so post-move exactness exercises installs and
	// reports crossing the moved ownership.
	focal := dmknn.Point{X: 150, Y: 500}
	positions := &fedPositions{pos: map[dmknn.ObjectID]dmknn.Point{
		1:  {X: 150, Y: 480}, // d=20
		2:  {X: 160, Y: 520}, // d≈22
		3:  {X: 250, Y: 500}, // column 2, d=100
		4:  {X: 250, Y: 300}, // column 2, far
		5:  {X: 120, Y: 300}, // d≈202
		6:  {X: 80, Y: 800},  // far
		7:  {X: 220, Y: 700}, // column 2, far
		8:  {X: 180, Y: 200}, // far
		9:  {X: 450, Y: 500}, // strip 1
		10: {X: 650, Y: 500}, // strip 2
		11: {X: 850, Y: 500}, // strip 3
		12: {X: 250, Y: 520}, // column 2, d≈102
	}}

	clientOpts := dmknn.FederationClientOptions{
		World:        fedWorld(),
		GridCols:     fedGrid,
		GridRows:     fedGrid,
		TickInterval: fedTick,
		Protocol:     fedProtocol(),
	}
	for id := dmknn.ObjectID(1); id <= 12; id++ {
		id := id
		oc, err := dmknn.DialObjectCluster(clients, id,
			func() dmknn.Point { return positions.get(id) }, clientOpts)
		if err != nil {
			t.Fatalf("object %d: %v", id, err)
		}
		t.Cleanup(func() { oc.Close() })
	}
	const k = 5
	qc, err := dmknn.DialQueryCluster(clients, 100, 1, k,
		func() dmknn.Point { return focal },
		func() dmknn.Vector { return dmknn.Vector{} },
		nil, clientOpts)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	t.Cleanup(func() { qc.Close() })
	truth := func() map[dmknn.ObjectID]bool { return positions.knn(focal, k) }

	// Checkpoint 1: exact under the static map, before the balancer has
	// enough load history to act.
	auditExact(t, "steady state", qc, truth, 60*time.Second)

	// The coordinator announces the first committed column move. Kill the
	// receiving side of the migration (node 1) immediately — its acked
	// map, the monitors shipped to it, and its client sessions all die
	// while the coordinator may still be retrying the update.
	procs[0].expect(t, "MOVED", 60*time.Second)
	procs[1].kill()
	procs[1] = spawnFedNode(t, 1, peers, clients, balEnv)
	procs[1].expect(t, "READY", 20*time.Second)
	procs[1].expect(t, "HEALTHY", 30*time.Second)

	// The rejoined node starts at partition version 0; the peer-hello
	// version exchange must push it the current map before routing
	// settles. Exactness here covers the migrating ticks: clients of the
	// moved column re-attach, their monitors re-learn, and the answer
	// still matches brute force.
	auditExact(t, "after receiver kill+rejoin", qc, truth, 90*time.Second)

	// Finally, movement across the rebalanced boundary: the far object 11
	// teleports into the focal neighborhood (entering the answer), which
	// only resolves if the converged map routes its reports to whichever
	// node now owns the focal region's columns.
	positions.set(11, dmknn.Point{X: 200, Y: 500})
	auditExact(t, "after teleport across moved boundary", qc, truth, 90*time.Second)
}
