package dmknn

import (
	"fmt"

	"dmknn/internal/baseline"
	"dmknn/internal/core"
	"dmknn/internal/metrics"
	"dmknn/internal/shard"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

// Method names accepted by SimConfig.Method.
const (
	MethodDKNN = "dknn" // the distributed protocol (this paper)
	MethodCP   = "cp"   // centralized periodic baseline
	MethodCI   = "ci"   // centralized incremental (threshold) baseline
	MethodCB   = "cb"   // centralized predictive dead-reckoning baseline
)

// Mobility model names accepted by SimConfig.Mobility.
const (
	MobilityWaypoint  = workload.ModelWaypoint
	MobilityDirection = workload.ModelDirection
	MobilityManhattan = workload.ModelManhattan
	MobilityHotspot   = workload.ModelHotspot
)

// SimConfig describes one simulation run. Zero fields take the values of
// the headline evaluation workload (10 km × 10 km world, 20 000 objects,
// 64 queries, k = 10; see DESIGN.md §5).
type SimConfig struct {
	// Method selects the query-processing strategy: MethodDKNN,
	// MethodCP, or MethodCI.
	Method string
	// CITau is the report threshold in meters for MethodCI and
	// MethodCB (default 50).
	CITau float64
	// Protocol tunes MethodDKNN.
	Protocol Protocol
	// Shards, when > 1, partitions MethodDKNN's server state over that
	// many parallel shards (interior scaling; wireless traffic
	// unchanged).
	Shards int

	World      Rect
	GridCols   int
	GridRows   int
	NumObjects int
	NumQueries int
	K          int
	// QueryRange, when positive, makes every query a fixed-radius range
	// monitor (all objects within QueryRange meters) instead of a kNN
	// query; K is then ignored.
	QueryRange float64
	// TickSeconds is the evaluation interval Δt (default 1).
	TickSeconds float64
	// Speeds in m/s; objects and query focal points move in
	// [max/4, max] under the chosen mobility model.
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	// Mobility selects the movement model for both populations
	// (default MobilityWaypoint).
	Mobility string
	// Ticks to measure after Warmup ticks.
	Ticks  int
	Warmup int
	Seed   int64
	// Network conditions.
	LatencyTicks  int
	UplinkLoss    float64
	DownlinkLoss  float64
	BroadcastLoss float64
	// SkipAudit disables ground-truth checking (faster; Report's
	// accuracy fields read as exact).
	SkipAudit bool
}

// Report is the measured outcome of a simulation run.
type Report struct {
	Method string
	// Mean wireless messages per evaluation interval, by direction.
	UplinkPerTick    float64
	DownlinkPerTick  float64
	BroadcastPerTick float64
	// UplinkBytes is the total uplink payload volume of the measured
	// phase.
	UplinkBytes uint64
	// Server processing time per tick, microseconds.
	ServerMicrosPerTick float64
	// Answer quality against brute-force ground truth, audited at every
	// (query, tick).
	Exactness  float64
	MeanRecall float64
	// MessageBreakdown is a per-kind, per-direction traffic table.
	MessageBreakdown string
}

func (c SimConfig) withDefaults() SimConfig {
	def := workload.Default()
	if c.Method == "" {
		c.Method = MethodDKNN
	}
	if c.CITau == 0 {
		c.CITau = 50
	}
	if c.World == (Rect{}) {
		b := def.World
		c.World = Rect{b.Min.X, b.Min.Y, b.Max.X, b.Max.Y}
	}
	if c.GridCols == 0 {
		c.GridCols = def.Cols
	}
	if c.GridRows == 0 {
		c.GridRows = def.Rows
	}
	if c.NumObjects == 0 {
		c.NumObjects = def.NumObjects
	}
	if c.NumQueries == 0 {
		c.NumQueries = def.NumQueries
	}
	if c.K == 0 && c.QueryRange == 0 {
		c.K = def.K
	}
	if c.TickSeconds == 0 {
		c.TickSeconds = def.DT
	}
	if c.MaxObjectSpeed == 0 {
		c.MaxObjectSpeed = def.MaxObjectSpeed
	}
	if c.MaxQuerySpeed == 0 {
		c.MaxQuerySpeed = def.MaxQuerySpeed
	}
	if c.Mobility == "" {
		c.Mobility = MobilityWaypoint
	}
	if c.Ticks == 0 {
		c.Ticks = def.Ticks
	}
	if c.Warmup == 0 {
		c.Warmup = def.Warmup
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (p Protocol) internal() core.Config {
	cfg := core.DefaultConfig()
	if p.HorizonTicks != 0 {
		cfg.HorizonTicks = p.HorizonTicks
	}
	if p.ThetaInside != 0 {
		cfg.ThetaInside = p.ThetaInside
	}
	if p.QueryDeviation != 0 {
		cfg.QueryDeviation = p.QueryDeviation
	}
	if p.AnswerSlack != 0 {
		cfg.AnswerSlack = p.AnswerSlack
	}
	if p.ResyncTicks != 0 {
		cfg.ResyncTicks = p.ResyncTicks
	}
	if p.MinProbeRadius != 0 {
		cfg.MinProbeRadius = p.MinProbeRadius
	}
	cfg.DeltaAnswers = p.DeltaAnswers
	cfg.Influence = p.Influence
	return cfg
}

func (c SimConfig) internal() (sim.Config, error) {
	world := c.World.internal()
	objModel, err := workload.ModelFactory(c.Mobility, world, c.MaxObjectSpeed/4, c.MaxObjectSpeed)
	if err != nil {
		return sim.Config{}, err
	}
	lo := c.MaxQuerySpeed / 4
	qryModel, err := workload.ModelFactory(c.Mobility, world, lo, c.MaxQuerySpeed)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		World:          world,
		Cols:           c.GridCols,
		Rows:           c.GridRows,
		NumObjects:     c.NumObjects,
		NumQueries:     c.NumQueries,
		K:              c.K,
		QueryRange:     c.QueryRange,
		DT:             c.TickSeconds,
		MaxObjectSpeed: c.MaxObjectSpeed,
		MaxQuerySpeed:  c.MaxQuerySpeed,
		Ticks:          c.Ticks,
		Warmup:         c.Warmup,
		Seed:           c.Seed,
		LatencyTicks:   c.LatencyTicks,
		UplinkLoss:     c.UplinkLoss,
		DownlinkLoss:   c.DownlinkLoss,
		BroadcastLoss:  c.BroadcastLoss,
		ObjectModel:    objModel,
		QueryModel:     qryModel,
		DisableAudit:   c.SkipAudit,
	}, nil
}

func (c SimConfig) method() (sim.Method, error) {
	switch c.Method {
	case MethodDKNN:
		if c.Shards > 1 {
			return shard.NewMethod(c.Shards, c.Protocol.internal())
		}
		return core.New(c.Protocol.internal())
	case MethodCP:
		return baseline.NewCP(), nil
	case MethodCI:
		return baseline.NewCI(c.CITau)
	case MethodCB:
		return baseline.NewCB(c.CITau)
	default:
		return nil, fmt.Errorf("dmknn: unknown method %q", c.Method)
	}
}

// Run executes one simulation and reports the measured traffic and
// answer quality.
func Run(cfg SimConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	simCfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	method, err := cfg.method()
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(simCfg, method)
	if err != nil {
		return nil, err
	}
	return &Report{
		Method:              res.Method,
		UplinkPerTick:       res.Uplink.Mean(),
		DownlinkPerTick:     res.Downlink.Mean(),
		BroadcastPerTick:    res.Broadcast.Mean(),
		UplinkBytes:         res.Traffic.SentBytes(metrics.Uplink),
		ServerMicrosPerTick: res.ServerUS.Mean(),
		Exactness:           res.Audit.Exactness(),
		MeanRecall:          res.Audit.MeanRecall(),
		MessageBreakdown:    res.Traffic.BreakdownTable(),
	}, nil
}
