package dmknn

// This file is the multi-process federation surface: one ListenAndServeNode
// per process runs one node of a dknnd cluster (a cluster.Member over a
// nettcp radio and a cluster.TCPLink), and DialObjectCluster/
// DialQueryCluster connect clients that follow their position across
// strip boundaries — redialing the owning node on their own initiative
// (objects track the static partition) or on a NodeRedirect from a
// server (queries follow their migrating monitor).

import (
	"fmt"
	"sync"
	"time"

	"dmknn/internal/balance"
	"dmknn/internal/cluster"
	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/nettcp"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// FederationOptions configures one node of a multi-process federation.
// World, grid, tick, speed, and protocol settings must be identical on
// every node (they define the shared partition), and the address slices
// must list every node in id order.
type FederationOptions struct {
	// World, grid, tick, speeds, and protocol settings as in
	// ServerOptions (same defaults).
	World          Rect
	GridCols       int
	GridRows       int
	TickInterval   time.Duration
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	Protocol       Protocol

	// Node is this process's node id in [0, len(PeerAddrs)).
	Node int
	// PeerAddrs holds every node's inter-node (link) listen address,
	// indexed by node id. len(PeerAddrs) is the cluster size: the world
	// is divided into that many column strips.
	PeerAddrs []string
	// ClientAddrs holds every node's client listen address, indexed by
	// node id; this node listens on ClientAddrs[Node], and redirects
	// carry the others to mis-attached clients.
	ClientAddrs []string

	// Heartbeat is the peer keepalive cadence (default 500ms; a peer
	// silent for 3 heartbeats is redialed).
	Heartbeat time.Duration
	// BalanceInterval, when > 0, enables adaptive partitioning with a
	// decision at most every that many ticks: node 0 coordinates
	// load-aware column moves between adjacent strips, distributed as
	// versioned partition updates. All nodes of one federation must agree
	// on this setting (enabled or not).
	BalanceInterval int
	// BalanceMinGain is the minimum relative load reduction a column move
	// must promise (default 0.05); only meaningful with BalanceInterval.
	BalanceMinGain float64
	// IdleReap, when > 0, evicts client connections with no inbound
	// frame for this long. Off by default: objects with no monitors are
	// legitimately silent indefinitely on TCP.
	IdleReap time.Duration
	// Trace, when set, receives the node's protocol and federation
	// events (stamped with the node id). Must be safe for concurrent
	// use; obs.Recorder is.
	Trace obs.Sink
}

func (o FederationOptions) withDefaults() (FederationOptions, error) {
	if o.World == (Rect{}) {
		return o, fmt.Errorf("dmknn: FederationOptions.World is required")
	}
	if len(o.PeerAddrs) < 1 {
		return o, fmt.Errorf("dmknn: FederationOptions.PeerAddrs is required")
	}
	if len(o.ClientAddrs) != len(o.PeerAddrs) {
		return o, fmt.Errorf("dmknn: %d client addresses for %d nodes", len(o.ClientAddrs), len(o.PeerAddrs))
	}
	if o.Node < 0 || o.Node >= len(o.PeerAddrs) {
		return o, fmt.Errorf("dmknn: node %d outside [0,%d)", o.Node, len(o.PeerAddrs))
	}
	if o.GridCols == 0 {
		o.GridCols = 64
	}
	if o.GridRows == 0 {
		o.GridRows = 64
	}
	if o.TickInterval == 0 {
		o.TickInterval = time.Second
	}
	if o.MaxObjectSpeed == 0 {
		o.MaxObjectSpeed = 30
	}
	if o.MaxQuerySpeed == 0 {
		o.MaxQuerySpeed = 30
	}
	return o, nil
}

// NodeServer is one running node of a deployed federation.
type NodeServer struct {
	node   int
	tcp    *nettcp.Server
	link   *cluster.TCPLink
	member *cluster.Member
	reap   time.Duration
	ticker *time.Ticker
	done   chan struct{}
	wg     sync.WaitGroup
}

// ListenAndServeNode starts one federation node: the client endpoint on
// ClientAddrs[Node], the peer link on PeerAddrs[Node], and the tick
// loop. Start every node of the cluster; peers reconnect with backoff,
// so start order does not matter.
func ListenAndServeNode(opts FederationOptions) (*NodeServer, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	world := opts.World.internal()
	geom := grid.NewGeometry(world, opts.GridCols, opts.GridRows)
	part, err := cluster.NewPartition(geom, len(opts.PeerAddrs))
	if err != nil {
		return nil, err
	}
	now := wallClock(opts.TickInterval)
	tcp, err := nettcp.Listen(opts.ClientAddrs[opts.Node], geom)
	if err != nil {
		return nil, err
	}
	link, err := cluster.NewTCPLink(cluster.TCPConfig{
		Node:      opts.Node,
		Addrs:     opts.PeerAddrs,
		Heartbeat: opts.Heartbeat,
		Now:       now,
	})
	if err != nil {
		tcp.Close()
		return nil, err
	}
	cfg := opts.Protocol.internal().WithWorldDefault(world)
	member, err := cluster.NewMember(part, opts.Node, cfg, cluster.MemberDeps{
		Link:           link,
		Radio:          tcp.Side(),
		ClientAddrs:    opts.ClientAddrs,
		Now:            now,
		DT:             opts.TickInterval.Seconds(),
		MaxObjectSpeed: opts.MaxObjectSpeed,
		MaxQuerySpeed:  opts.MaxQuerySpeed,
		// A cross-boundary probe pays the radio round trip plus a link
		// hop each way: budget one extra tick over the single-node bound.
		LatencyTicks: 2,
		Trace:        opts.Trace,
	})
	if err != nil {
		link.Close()
		tcp.Close()
		return nil, err
	}
	if opts.BalanceInterval > 0 {
		member.EnableBalancer(balance.Config{
			IntervalTicks: opts.BalanceInterval,
			MinGain:       opts.BalanceMinGain,
		})
	}
	tcp.AttachHandler(member)

	s := &NodeServer{
		node:   opts.Node,
		tcp:    tcp,
		link:   link,
		member: member,
		reap:   opts.IdleReap,
		ticker: time.NewTicker(opts.TickInterval),
		done:   make(chan struct{}),
	}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		_ = tcp.Serve()
	}()
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-s.done:
				return
			case <-s.ticker.C:
				t := now()
				if s.reap > 0 {
					s.tcp.ReapIdle(s.reap)
				}
				member.Tick(t)
				for i := 0; i < 8 && member.Finalize(t); i++ {
				}
			}
		}
	}()
	return s, nil
}

// Node returns this server's node id.
func (s *NodeServer) Node() int { return s.node }

// Addr returns the client listen address ("host:port").
func (s *NodeServer) Addr() string { return s.tcp.Addr().String() }

// PeerAddr returns the inter-node listen address.
func (s *NodeServer) PeerAddr() string { return s.link.Addr().String() }

// Answer returns the node's current answer for a locally homed query.
func (s *NodeServer) Answer(q QueryID) Answer {
	return fromAnswer(s.member.Answer(model.QueryID(q)))
}

// QueryCount returns the number of locally homed queries.
func (s *NodeServer) QueryCount() int { return s.member.QueryCount() }

// ClientCount returns the number of clients attached to this node.
func (s *NodeServer) ClientCount() int { return s.tcp.ClientCount() }

// PeersUp returns how many peer link sessions are currently established
// (out of len(PeerAddrs)-1).
func (s *NodeServer) PeersUp() int { return s.link.ConnectedCount() }

// Healthy reports whether every peer link session is established.
func (s *NodeServer) Healthy() bool {
	return s.link.ConnectedCount() == s.member.Partition().Nodes()-1
}

// NodeStats is an operational snapshot of one federation node: the
// single-server counters plus the federation-level ones.
type NodeStats struct {
	Stats
	Node           int    `json:"node"`
	PeersUp        int    `json:"peers_up"`
	Attached       int    `json:"attached"`
	LocalQueries   int    `json:"local_queries"`
	ObjectHandoffs uint64 `json:"object_handoffs"`
	QueryHandoffs  uint64 `json:"query_handoffs"`
	RelayDrops     uint64 `json:"relay_drops"`
	Redirects      uint64 `json:"redirects"`
	Evictions      uint64 `json:"evictions"`
	LinkSent       uint64 `json:"link_sent"`
	LinkDelivered  uint64 `json:"link_delivered"`
	LinkDropped    uint64 `json:"link_dropped"`
	LinkSentBytes  uint64 `json:"link_sent_bytes"`
	// Adaptive partitioning (all zero when the balancer is off; the
	// decision counters are non-zero only on the coordinator).
	PartitionVersion uint64 `json:"partition_version"`
	OwnedColumns     int    `json:"owned_columns"`
	ColumnMoves      uint64 `json:"column_moves"`
	BalanceDecisions uint64 `json:"balance_decisions"`
	BalanceMoves     uint64 `json:"balance_moves"`
	BalanceSplits    uint64 `json:"balance_splits"`
	BalanceMerges    uint64 `json:"balance_merges"`
}

// Stats returns current operational counters.
func (s *NodeServer) Stats() NodeStats {
	c := s.tcp.Counters()
	fed := s.member.Stats()
	ls := s.link.Stats()
	bs := s.member.BalancerStats()
	return NodeStats{
		Stats: Stats{
			Clients:        s.tcp.ClientCount(),
			Queries:        s.member.QueryCount(),
			UplinkMsgs:     c.Sent(metrics.Uplink),
			DownlinkMsgs:   c.Sent(metrics.Downlink),
			BroadcastMsgs:  c.Sent(metrics.Broadcast),
			UplinkBytes:    c.SentBytes(metrics.Uplink),
			DownlinkBytes:  c.SentBytes(metrics.Downlink),
			BroadcastBytes: c.SentBytes(metrics.Broadcast),
			BusyTime:       s.member.BusyTime(),
		},
		Node:           s.node,
		PeersUp:        s.link.ConnectedCount(),
		Attached:       s.member.AttachedCount(),
		LocalQueries:   s.member.LocalQueries(),
		ObjectHandoffs: fed.ObjectHandoffs,
		QueryHandoffs:  fed.QueryHandoffs,
		RelayDrops:     fed.RelayDrops,
		Redirects:      s.member.Redirects(),
		Evictions:      c.Evictions(),
		LinkSent:       ls.Sent,
		LinkDelivered:  ls.Delivered,
		LinkDropped:    ls.Dropped,
		LinkSentBytes:  ls.SentBytes,

		PartitionVersion: s.member.PartitionVersion(),
		OwnedColumns:     s.member.OwnedColumns(),
		ColumnMoves:      fed.ColumnMoves,
		BalanceDecisions: bs.Decisions,
		BalanceMoves:     bs.Moves,
		BalanceSplits:    bs.Splits,
		BalanceMerges:    bs.Merges,
	}
}

// Close stops the tick loop, the peer link, and the client endpoint.
func (s *NodeServer) Close() error {
	close(s.done)
	s.ticker.Stop()
	lerr := s.link.Close()
	terr := s.tcp.Close()
	s.wg.Wait()
	if terr != nil {
		return terr
	}
	return lerr
}

// ---------------------------------------------------------------------------
// Federation clients

// FederationClientOptions configures a client of a multi-process
// federation. World, grid, tick, and protocol settings must match the
// servers' — clients derive the strip partition from them to dial the
// node owning their position, the TCP stand-in for positional radio.
type FederationClientOptions struct {
	World        Rect
	GridCols     int
	GridRows     int
	TickInterval time.Duration
	Protocol     Protocol
}

func (o FederationClientOptions) withDefaults() (FederationClientOptions, error) {
	if o.World == (Rect{}) {
		return o, fmt.Errorf("dmknn: FederationClientOptions.World is required")
	}
	if o.GridCols == 0 {
		o.GridCols = 64
	}
	if o.GridRows == 0 {
		o.GridRows = 64
	}
	if o.TickInterval == 0 {
		o.TickInterval = time.Second
	}
	return o, nil
}

// fedConn is a client connection to a federation: a transport.ClientSide
// facade over whichever node currently owns the client's position. It
// re-dials on NodeRedirect downlinks, on connection death (with retries
// at tick cadence, surviving a node restart), and — for objects, which
// may be legitimately silent — on its own observation that the position
// crossed a strip boundary, flushing a final LocationReport on the old
// connection first so the old node hands the state off before the
// disconnect.
//
// The partition it derives dial targets from starts at the even static
// division and follows the versioned PartitionUpdate broadcasts of a
// balance-enabled federation; a client that misses an update aims at a
// stale owner and is healed by NodeRedirect, so the update is a routing
// optimization, never a correctness requirement.
type fedConn struct {
	id       model.ObjectID
	addrs    []string
	geom     grid.Geometry
	pos      func() geo.Point
	now      func() model.Tick
	interval time.Duration
	track    bool // self-initiated boundary migration (objects)
	handler  transport.ClientHandler

	mu      sync.Mutex
	part    cluster.Partition
	cur     *nettcp.Client
	curNode int
	closed  bool

	kick chan int // redirect target node ids
	done chan struct{}
	wg   sync.WaitGroup
}

func newFedConn(addrs []string, id model.ObjectID, pos func() geo.Point,
	opts FederationClientOptions, track bool, h transport.ClientHandler) (*fedConn, error) {
	geom := grid.NewGeometry(opts.World.internal(), opts.GridCols, opts.GridRows)
	part, err := cluster.NewPartition(geom, len(addrs))
	if err != nil {
		return nil, err
	}
	f := &fedConn{
		id:       id,
		addrs:    addrs,
		geom:     geom,
		part:     part,
		pos:      pos,
		now:      wallClock(opts.TickInterval),
		interval: opts.TickInterval,
		track:    track,
		handler:  h,
		curNode:  -1,
		kick:     make(chan int, 4),
		done:     make(chan struct{}),
	}
	// Dial the owner of the starting position; fall back to any node
	// (attachment heals through redirects once traffic flows).
	owner := part.NodeOf(pos())
	order := []int{owner}
	for i := range addrs {
		if i != owner {
			order = append(order, i)
		}
	}
	var firstErr error
	for _, n := range order {
		cl, err := nettcp.Dial(addrs[n], id, transport.ClientHandlerFunc(f.dispatch))
		if err == nil {
			f.cur, f.curNode = cl, n
			break
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if f.cur == nil {
		return nil, fmt.Errorf("dmknn: no federation node reachable: %w", firstErr)
	}
	f.wg.Add(1)
	go f.supervise()
	return f, nil
}

// dispatch fans received frames to the application handler, intercepting
// the federation control frames (redirects and partition updates).
func (f *fedConn) dispatch(m protocol.Message) {
	switch v := m.(type) {
	case protocol.NodeRedirect:
		select {
		case f.kick <- int(v.Node):
		default: // a redirect is already queued; one is enough
		}
		return
	case protocol.PartitionUpdate:
		f.applyPartitionUpdate(v)
		return
	}
	f.handler.HandleServerMessage(m)
}

// applyPartitionUpdate installs a newer map so future dial decisions use
// the current strips. A corrupt or stale update is ignored.
func (f *fedConn) applyPartitionUpdate(u protocol.PartitionUpdate) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if u.Version <= f.part.Version() {
		return
	}
	owners := make([]int, len(u.Owners))
	for i, o := range u.Owners {
		owners[i] = int(o)
	}
	if np, err := cluster.PartitionFromOwners(f.geom, owners, f.part.Nodes(), u.Version); err == nil {
		f.part = np
	}
}

// owner returns the node owning p under the current map.
func (f *fedConn) owner(p geo.Point) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.part.NodeOf(p)
}

func (f *fedConn) current() (*nettcp.Client, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur, f.curNode
}

// supervise keeps the connection attached to the owning node for the
// client's lifetime.
func (f *fedConn) supervise() {
	defer f.wg.Done()
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		cur, curNode := f.current()
		var connDied <-chan struct{}
		if cur != nil {
			connDied = cur.Done()
		}
		select {
		case <-f.done:
			return
		case n := <-f.kick:
			// The server knows better than our partition arithmetic (it
			// already handed our state to n); no flush needed.
			if n != curNode {
				f.migrate(n, false)
			}
		case <-connDied:
			f.redial()
		case <-t.C:
			if cur == nil {
				f.redial()
				continue
			}
			if f.track {
				if owner := f.owner(f.pos()); owner != curNode {
					f.migrate(owner, true)
				}
			}
		}
	}
}

// migrate swaps the attachment to another node. flush sends a final
// LocationReport on the old connection first: its kinematics prove the
// boundary crossing to the old node, which hands our state to the owner
// BEFORE seeing the disconnect — so the disconnect purges nothing.
func (f *fedConn) migrate(to int, flush bool) {
	if to < 0 || to >= len(f.addrs) {
		return
	}
	cl, err := nettcp.Dial(f.addrs[to], f.id, transport.ClientHandlerFunc(f.dispatch))
	if err != nil {
		return // stay put; the next tick or redirect retries
	}
	f.mu.Lock()
	old := f.cur
	if f.closed {
		f.mu.Unlock()
		cl.Close()
		return
	}
	if flush && old != nil {
		old.Uplink(protocol.LocationReport{Object: f.id, Pos: f.pos(), At: f.now()})
	}
	f.cur, f.curNode = cl, to
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// redial re-attaches after a dead connection (node crash or restart):
// aim at the position's owner and keep trying at tick cadence.
func (f *fedConn) redial() {
	owner := f.owner(f.pos())
	cl, err := nettcp.Dial(f.addrs[owner], f.id, transport.ClientHandlerFunc(f.dispatch))
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		if err == nil {
			cl.Close()
		}
		return
	}
	if old := f.cur; old != nil {
		f.cur = nil
		go old.Close() // fully dead already; Close only reaps the loop
	}
	if err != nil {
		return // supervise retries on the next tick
	}
	f.cur, f.curNode = cl, owner
}

// Uplink implements transport.ClientSide. During a re-attachment gap the
// frame is dropped — the protocol is loss-tolerant by design, and the
// state machines heal through reinstalls and resyncs.
func (f *fedConn) Uplink(m protocol.Message) {
	f.mu.Lock()
	cur := f.cur
	f.mu.Unlock()
	if cur != nil {
		cur.Uplink(m)
	}
}

// Close detaches permanently.
func (f *fedConn) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	cur := f.cur
	f.cur = nil
	f.mu.Unlock()
	close(f.done)
	var err error
	if cur != nil {
		err = cur.Close()
	}
	f.wg.Wait()
	return err
}

var _ clientConn = (*fedConn)(nil)

// DialObjectCluster connects object id to a multi-process federation:
// addrs lists every node's client address in node-id order. The client
// attaches to the node owning its position and follows it across strip
// boundaries. pos is the client's position sensor.
func DialObjectCluster(addrs []string, id ObjectID, pos func() Point, opts FederationClientOptions) (*ObjectClient, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	oc := &ObjectClient{done: make(chan struct{})}
	cfg := opts.Protocol.internal().WithWorldDefault(opts.World.internal())
	now := wallClock(opts.TickInterval)
	conn, err := newFedConn(addrs, model.ObjectID(id), func() geo.Point { return pos().internal() },
		opts, true, transport.ClientHandlerFunc(func(m protocol.Message) {
			if a := oc.agent.Load(); a != nil {
				a.HandleServerMessage(m)
			}
		}))
	if err != nil {
		return nil, err
	}
	agent, err := core.NewObjectAgent(cfg, core.AgentDeps{
		ID:           model.ObjectID(id),
		Side:         conn,
		Now:          now,
		Pos:          func() geo.Point { return pos().internal() },
		DT:           opts.TickInterval.Seconds(),
		LatencyTicks: 2, // match the federation's delivery bound
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	oc.conn = conn
	oc.agent.Store(agent)
	oc.ticker = time.NewTicker(opts.TickInterval)
	oc.wg.Add(1)
	go func() {
		defer oc.wg.Done()
		for {
			select {
			case <-oc.done:
				return
			case <-oc.ticker.C:
				agent.Tick(now())
			}
		}
	}()
	return oc, nil
}

// DialQueryCluster connects a focal client to a multi-process federation
// and registers a k-NN query. The query registers at the node owning the
// focal position; when the monitor migrates across a strip boundary, the
// new home redirects this client transparently. Parameters are as in
// DialQuery, with addrs listing every node's client address in node-id
// order.
func DialQueryCluster(addrs []string, clientID ObjectID, query QueryID, k int,
	pos func() Point, vel func() Vector, onAnswer func(Answer),
	opts FederationClientOptions) (*QueryClient, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	qc := &QueryClient{done: make(chan struct{})}
	cfg := opts.Protocol.internal().WithWorldDefault(opts.World.internal())
	now := wallClock(opts.TickInterval)
	conn, err := newFedConn(addrs, model.ObjectID(clientID), func() geo.Point { return pos().internal() },
		opts, false, transport.ClientHandlerFunc(func(m protocol.Message) {
			if a := qc.agent.Load(); a != nil {
				a.HandleServerMessage(m)
			}
		}))
	if err != nil {
		return nil, err
	}
	agent, err := core.NewQueryAgent(cfg,
		model.QuerySpec{ID: model.QueryID(query), K: k, Pos: pos().internal()},
		core.QueryAgentDeps{
			AgentDeps: core.AgentDeps{
				ID:           model.ObjectID(clientID),
				Side:         conn,
				Now:          now,
				Pos:          func() geo.Point { return pos().internal() },
				DT:           opts.TickInterval.Seconds(),
				LatencyTicks: 2, // match the federation's delivery bound
			},
			Vel: func() geo.Vector { return vel().internal() },
		})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if onAnswer != nil {
		agent.OnAnswer = func(a model.Answer) { onAnswer(fromAnswer(a)) }
	}
	qc.conn = conn
	qc.agent.Store(agent)
	qc.ticker = time.NewTicker(opts.TickInterval)
	qc.wg.Add(1)
	go func() {
		defer qc.wg.Done()
		for {
			select {
			case <-qc.done:
				return
			case <-qc.ticker.C:
				agent.Tick(now())
			}
		}
	}()
	return qc, nil
}
